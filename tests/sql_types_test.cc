#include <gtest/gtest.h>

#include "sql/column_vector.h"
#include "sql/types.h"
#include "sql/value.h"

namespace qy::sql {
namespace {

// ---------------------------------------------------------------------------
// DataType
// ---------------------------------------------------------------------------

TEST(TypesTest, ParseAliases) {
  EXPECT_EQ(ParseDataType("INTEGER").value(), DataType::kBigInt);
  EXPECT_EQ(ParseDataType("int").value(), DataType::kBigInt);
  EXPECT_EQ(ParseDataType("REAL").value(), DataType::kDouble);
  EXPECT_EQ(ParseDataType("text").value(), DataType::kVarchar);
  EXPECT_EQ(ParseDataType("INT128").value(), DataType::kHugeInt);
  EXPECT_EQ(ParseDataType("bool").value(), DataType::kBool);
  EXPECT_FALSE(ParseDataType("BLOB").ok());
}

TEST(TypesTest, NumericPromotionLadder) {
  EXPECT_EQ(CommonNumericType(DataType::kBigInt, DataType::kDouble).value(),
            DataType::kDouble);
  EXPECT_EQ(CommonNumericType(DataType::kBigInt, DataType::kHugeInt).value(),
            DataType::kHugeInt);
  EXPECT_EQ(CommonNumericType(DataType::kBool, DataType::kBool).value(),
            DataType::kBigInt);
  EXPECT_FALSE(CommonNumericType(DataType::kVarchar, DataType::kBigInt).ok());
}

TEST(TypesTest, IntegerPromotion) {
  EXPECT_EQ(CommonIntegerType(DataType::kBigInt, DataType::kBigInt).value(),
            DataType::kBigInt);
  EXPECT_EQ(CommonIntegerType(DataType::kHugeInt, DataType::kBigInt).value(),
            DataType::kHugeInt);
  EXPECT_FALSE(CommonIntegerType(DataType::kDouble, DataType::kBigInt).ok());
  EXPECT_FALSE(CommonIntegerType(DataType::kVarchar, DataType::kBigInt).ok());
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::BigInt(7).bigint_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Varchar("x").varchar_value(), "x");
  EXPECT_TRUE(Value::Null(DataType::kDouble).is_null());
  EXPECT_EQ(Value::Null(DataType::kDouble).type(), DataType::kDouble);
}

TEST(ValueTest, NumericWidening) {
  Value v = Value::BigInt(-3);
  EXPECT_DOUBLE_EQ(v.AsDouble(), -3.0);
  EXPECT_TRUE(v.AsHugeInt() == -3);
  EXPECT_EQ(Value::Bool(true).AsBigInt(), 1);
}

TEST(ValueTest, CastNumeric) {
  EXPECT_EQ(Value::Double(2.6).CastTo(DataType::kBigInt)->bigint_value(), 3);
  EXPECT_EQ(Value::BigInt(5).CastTo(DataType::kHugeInt)->hugeint_value(), 5);
  EXPECT_DOUBLE_EQ(Value::HugeInt(10).CastTo(DataType::kDouble)->double_value(),
                   10.0);
}

TEST(ValueTest, CastStringBothWays) {
  EXPECT_EQ(Value::Varchar("42").CastTo(DataType::kBigInt)->bigint_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Varchar("2.5").CastTo(DataType::kDouble)->double_value(),
                   2.5);
  EXPECT_EQ(Value::BigInt(7).CastTo(DataType::kVarchar)->varchar_value(), "7");
  EXPECT_FALSE(Value::Varchar("nope").CastTo(DataType::kBigInt).ok());
}

TEST(ValueTest, CastHugeIntRangeChecked) {
  int128_t big = static_cast<int128_t>(1) << 70;
  EXPECT_FALSE(Value::HugeInt(big).CastTo(DataType::kBigInt).ok());
  EXPECT_TRUE(Value::HugeInt(5).CastTo(DataType::kBigInt).ok());
}

TEST(ValueTest, NullCastKeepsNull) {
  auto v = Value::Null(DataType::kBigInt).CastTo(DataType::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_EQ(v->type(), DataType::kDouble);
}

TEST(ValueTest, CompareOrdersNullFirst) {
  EXPECT_LT(Value::Null(DataType::kBigInt).Compare(Value::BigInt(-100)), 0);
  EXPECT_EQ(Value::Null(DataType::kBigInt).Compare(Value::Null(DataType::kDouble)),
            0);
}

TEST(ValueTest, CompareAcrossNumericTypes) {
  EXPECT_EQ(Value::BigInt(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::BigInt(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::HugeInt(static_cast<int128_t>(1) << 100)
                .Compare(Value::BigInt(INT64_MAX)),
            0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::Varchar("abc").Compare(Value::Varchar("abd")), 0);
  EXPECT_EQ(Value::Varchar("x").Compare(Value::Varchar("x")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::BigInt(42).Hash(), Value::BigInt(42).Hash());
  EXPECT_NE(Value::BigInt(42).Hash(), Value::BigInt(43).Hash());
  EXPECT_EQ(Value::Varchar("ab").Hash(), Value::Varchar("ab").Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::BigInt(-7).ToString(), "-7");
  EXPECT_EQ(Value::Varchar("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Null(DataType::kDouble).ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
}

// ---------------------------------------------------------------------------
// ColumnVector
// ---------------------------------------------------------------------------

TEST(ColumnVectorTest, AppendAndGet) {
  ColumnVector col(DataType::kBigInt);
  col.AppendBigInt(1);
  col.AppendNull();
  col.AppendBigInt(3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetValue(2).bigint_value(), 3);
  EXPECT_TRUE(col.AnyNull());
}

TEST(ColumnVectorTest, ValidityStaysEmptyWithoutNulls) {
  ColumnVector col(DataType::kDouble);
  col.AppendDouble(1.0);
  col.AppendDouble(2.0);
  EXPECT_TRUE(col.validity().empty());
  EXPECT_FALSE(col.AnyNull());
}

TEST(ColumnVectorTest, AppendValueCastsToColumnType) {
  ColumnVector col(DataType::kDouble);
  ASSERT_TRUE(col.AppendValue(Value::BigInt(3)).ok());
  EXPECT_DOUBLE_EQ(col.f64_data()[0], 3.0);
}

TEST(ColumnVectorTest, AppendFromCopiesNulls) {
  ColumnVector a(DataType::kVarchar);
  a.AppendVarchar("x");
  a.AppendNull();
  ColumnVector b(DataType::kVarchar);
  b.AppendFrom(a, 0);
  b.AppendFrom(a, 1);
  EXPECT_EQ(b.str_data()[0], "x");
  EXPECT_TRUE(b.IsNull(1));
}

TEST(ColumnVectorTest, FastCastWidening) {
  ColumnVector col(DataType::kBigInt);
  for (int64_t v : {1, -2, 3}) col.AppendBigInt(v);
  auto d = col.CastTo(DataType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->f64_data()[1], -2.0);
  auto h = col.CastTo(DataType::kHugeInt);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->i128_data()[2] == 3);
}

TEST(ColumnVectorTest, CastPreservesNulls) {
  ColumnVector col(DataType::kBigInt);
  col.AppendBigInt(1);
  col.AppendNull();
  auto d = col.CastTo(DataType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsNull(1));
  EXPECT_FALSE(d->IsNull(0));
}

TEST(ColumnVectorTest, GenericCastStringToInt) {
  ColumnVector col(DataType::kVarchar);
  col.AppendVarchar("10");
  col.AppendVarchar("-3");
  auto ints = col.CastTo(DataType::kBigInt);
  ASSERT_TRUE(ints.ok());
  EXPECT_EQ(ints->i64_data()[0], 10);
  EXPECT_EQ(ints->i64_data()[1], -3);
}

TEST(ColumnVectorTest, ApproxBytesCountsStrings) {
  ColumnVector col(DataType::kVarchar);
  col.AppendVarchar(std::string(100, 'x'));
  EXPECT_GE(col.ApproxBytes(), 100u);
}

}  // namespace
}  // namespace qy::sql
