#include "testutil/testutil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "circuit/families.h"
#include "sim/dd.h"
#include "sim/mps.h"
#include "sim/sparse_sim.h"
#include "sim/statevector.h"

namespace qy::test {

namespace {

/// QFT-style parameterized circuit: H + controlled-phase ladder with the
/// exact angles pi/2^k, then a rotation layer so RX/RY/RZ/P/U all appear.
qc::QuantumCircuit ParameterizedLadder(int n) {
  qc::QuantumCircuit c(n, "param_ladder");
  for (int q = 0; q < n; ++q) {
    c.H(q);
    for (int k = q + 1; k < n; ++k) {
      c.CP(M_PI / static_cast<double>(1 << (k - q)), k, q);
    }
  }
  for (int q = 0; q < n; ++q) {
    c.RX(0.3 + 0.1 * q, q).RY(-0.7 + 0.2 * q, q).RZ(1.1 * (q + 1), q);
  }
  c.P(0.25, 0).U(0.4, -0.2, 0.9, n - 1);
  return c;
}

}  // namespace

std::vector<NamedCircuit> PaperCircuitFamilies() {
  std::vector<NamedCircuit> out;
  out.push_back({"ghz4", qc::Ghz(4)});
  out.push_back({"superposition3", qc::EqualSuperposition(3)});
  out.push_back({"parity_check_10110", qc::ParityCheck({1, 0, 1, 1, 0})});
  out.push_back({"bell_pair", qc::BellPair()});
  out.push_back({"w_state3", qc::WState(3)});
  out.push_back({"qft3", qc::Qft(3)});
  out.push_back({"ghz_round_trip4", qc::GhzRoundTrip(4)});
  out.push_back({"param_ladder4", ParameterizedLadder(4)});
  out.push_back({"random_sparse5", qc::RandomSparse(5, 12, /*seed=*/42,
                                                    /*superposed_qubits=*/2)});
  out.push_back({"random_dense3", qc::RandomDense(3, 4, /*seed=*/7)});
  out.push_back({"ansatz3", qc::HardwareEfficientAnsatz(3, 2, /*seed=*/11)});
  out.push_back({"sparse_phase4", qc::SparsePhase(4, 8, /*seed=*/5)});
  return out;
}

std::vector<NamedCircuit> SparseCircuitFamilies() {
  std::vector<NamedCircuit> out;
  out.push_back({"ghz6", qc::Ghz(6)});
  out.push_back({"parity_check_110101", qc::ParityCheck({1, 1, 0, 1, 0, 1})});
  out.push_back({"ghz_round_trip5", qc::GhzRoundTrip(5)});
  out.push_back({"random_sparse6", qc::RandomSparse(6, 16, /*seed=*/3)});
  out.push_back({"sparse_phase5", qc::SparsePhase(5, 10, /*seed=*/9)});
  return out;
}

std::vector<BackendFactory> InMemoryBackends() {
  return {
      {"statevector",
       [](const sim::SimOptions& o) -> std::unique_ptr<sim::Simulator> {
         return std::make_unique<sim::StatevectorSimulator>(o);
       }},
      {"sparse",
       [](const sim::SimOptions& o) -> std::unique_ptr<sim::Simulator> {
         return std::make_unique<sim::SparseSimulator>(o);
       }},
      {"mps",
       [](const sim::SimOptions& o) -> std::unique_ptr<sim::Simulator> {
         return std::make_unique<sim::MpsSimulator>(o);
       }},
      {"dd",
       [](const sim::SimOptions& o) -> std::unique_ptr<sim::Simulator> {
         return std::make_unique<sim::DdSimulator>(o);
       }},
  };
}

std::vector<BackendFactory> QymeraBackendVariants() {
  using Mode = core::QymeraOptions::Mode;
  struct Variant {
    std::string name;
    Mode mode;
    bool fusion;
    bool hugeint;
    bool order_by;
    size_t threads = 1;
  };
  // The thread-count axis (t1/t2/t8) must not change results: t1 is the
  // byte-identical serial engine, t2/t8 exercise the morsel-driven parallel
  // join/aggregate paths including the ORDER BY output-ordering guarantee.
  const std::vector<Variant> variants = {
      {"qymera/materialized", Mode::kMaterializedSteps, false, false, false},
      {"qymera/single_query", Mode::kSingleQuery, false, false, false},
      {"qymera/materialized+fusion", Mode::kMaterializedSteps, true, false,
       false},
      {"qymera/single_query+fusion", Mode::kSingleQuery, true, false, false},
      {"qymera/materialized+hugeint", Mode::kMaterializedSteps, false, true,
       false},
      {"qymera/single_query+hugeint", Mode::kSingleQuery, false, true, false},
      {"qymera/single_query+order_by", Mode::kSingleQuery, false, false, true},
      {"qymera/materialized+t2", Mode::kMaterializedSteps, false, false, false,
       2},
      {"qymera/materialized+t8", Mode::kMaterializedSteps, false, false, false,
       8},
      {"qymera/single_query+t2", Mode::kSingleQuery, false, false, false, 2},
      {"qymera/single_query+t8", Mode::kSingleQuery, false, false, false, 8},
      {"qymera/single_query+order_by+t8", Mode::kSingleQuery, false, false,
       true, 8},
  };
  std::vector<BackendFactory> out;
  for (const Variant& v : variants) {
    out.push_back(
        {v.name,
         [v](const sim::SimOptions& o) -> std::unique_ptr<sim::Simulator> {
           core::QymeraOptions qopts;
           qopts.base = o;
           qopts.mode = v.mode;
           qopts.enable_fusion = v.fusion;
           qopts.force_hugeint = v.hugeint;
           qopts.final_order_by = v.order_by;
           qopts.num_threads = v.threads;
           return std::make_unique<core::QymeraSimulator>(qopts);
         }});
  }
  return out;
}

void ExpectStatesClose(const sim::SparseState& expected,
                       const sim::SparseState& actual, double tol,
                       const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(expected.num_qubits(), actual.num_qubits());
  EXPECT_NEAR(actual.NormSquared(), expected.NormSquared(), tol);
  EXPECT_NEAR(sim::SparseState::FidelityOverlap(expected, actual), 1.0, tol);
  double diff = sim::SparseState::MaxAmplitudeDiff(expected, actual);
  EXPECT_LE(diff, tol) << "expected: " << expected.ToString()
                       << "\nactual:   " << actual.ToString();
}

sim::SparseState RunBackend(const BackendFactory& factory,
                            const qc::QuantumCircuit& circuit,
                            const sim::SimOptions& options) {
  std::unique_ptr<sim::Simulator> sim = factory.make(options);
  auto state = sim->Run(circuit);
  if (!state.ok()) {
    ADD_FAILURE() << factory.name << " failed on " << circuit.name() << ": "
                  << state.status().ToString();
    return sim::SparseState::ZeroState(circuit.num_qubits());
  }
  return *std::move(state);
}

void ExpectNoLeakedTempFiles(sql::Database& db, const std::string& context) {
  EXPECT_EQ(db.temp_files().LiveFileCount(), 0u)
      << context << ": spill temp files leaked";
}

void ExpectQueryCleanup(sql::Database& db, uint64_t used_before,
                        const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(db.tracker().used(), used_before)
      << "tracked memory not restored after the query";
  ExpectNoLeakedTempFiles(db, context);
  if (db.pool() != nullptr) {
    // TaskGroup::Wait can return a hair before the worker's active-count
    // decrement; give the pool a moment to settle.
    for (int i = 0; i < 2000 && !db.pool()->Quiescent(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(db.pool()->Quiescent()) << "worker pool not drained";
  }
}

}  // namespace qy::test
