/// \file testutil.h
/// Shared test infrastructure: named circuit builders for the paper's
/// workload families, amplitude-level state comparison with tolerance, and a
/// registry of simulator backends (in-memory baselines plus every QymeraSim
/// configuration axis) so equivalence tests can sweep backend x circuit.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "core/qymera_sim.h"
#include "sim/simulator.h"
#include "sim/state.h"
#include "sql/database.h"

namespace qy::test {

/// A circuit with a display name for SCOPED_TRACE / failure messages.
struct NamedCircuit {
  std::string name;
  qc::QuantumCircuit circuit;
};

/// The paper's circuit families at test-friendly sizes: GHZ, equal
/// superposition, parity check, Bell, W state, QFT-style parameterized
/// ladders, interference round-trip, and seeded random sparse/dense layers.
std::vector<NamedCircuit> PaperCircuitFamilies();

/// Subset of PaperCircuitFamilies() whose states stay sparse (few nonzero
/// amplitudes) — safe for backends that scale with nnz.
std::vector<NamedCircuit> SparseCircuitFamilies();

/// A simulator factory with a stable display name.
struct BackendFactory {
  std::string name;
  std::function<std::unique_ptr<sim::Simulator>(const sim::SimOptions&)> make;
};

/// The four in-memory baselines: statevector, sparse, mps, dd.
std::vector<BackendFactory> InMemoryBackends();

/// QymeraSimulator variants covering the option axes that must not change
/// semantics: materialized vs single-query, fusion on/off, forced-hugeint
/// indices, and final ORDER BY.
std::vector<BackendFactory> QymeraBackendVariants();

/// EXPECT that two states describe the same physical state: equal qubit
/// count, norm preserved, fidelity |<a|b>| ~ 1, and per-amplitude agreement
/// within `tol` (the states share the |0..0>-start phase convention, so
/// amplitudes must match exactly, not just up to global phase).
void ExpectStatesClose(const sim::SparseState& expected,
                       const sim::SparseState& actual, double tol,
                       const std::string& context);

/// Run `circuit` on a fresh instance from `factory` and return the state;
/// ADD_FAILURE (and returns ZeroState) if the backend errors.
sim::SparseState RunBackend(const BackendFactory& factory,
                            const qc::QuantumCircuit& circuit,
                            const sim::SimOptions& options = {});

/// EXPECT that `db` leaked no spill temp files (TempFileManager directory is
/// empty). Call after any failed / cancelled / successful query.
void ExpectNoLeakedTempFiles(sql::Database& db, const std::string& context);

/// EXPECT the failure-path cleanup invariants after a query on `db`
/// returned (successfully or not):
///   - tracked memory is back to `used_before` (the level snapshotted
///     before the query; the tracker also accounts resident tables),
///   - no spill temp files remain on disk,
///   - the worker pool is quiescent (polls briefly: a worker may still be
///     between finishing the last task and the bookkeeping decrement).
void ExpectQueryCleanup(sql::Database& db, uint64_t used_before,
                        const std::string& context);

}  // namespace qy::test
